// Concurrency harness for the work-stealing scheduler (and the legacy
// shared-queue pool behind the same interface): randomized-DAG stress,
// priority ordering, wait_idle() completeness, nested submission and
// nested parallel_for. Designed to run under BLR_SANITIZE=thread.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "common/prng.hpp"
#include "common/thread_pool.hpp"

namespace {

using namespace blr;

constexpr SchedulerKind kKinds[] = {SchedulerKind::WorkStealing,
                                    SchedulerKind::SharedQueue};

/// A randomized task DAG: node i depends on a few predecessors with smaller
/// index, tasks decrement successor counters and submit the ones that drain
/// — the same protocol the numeric factorization uses.
struct RandomDag {
  explicit RandomDag(index_t n, std::uint64_t seed) : succs(n), deps(n) {
    Prng rng(seed);
    for (index_t i = 1; i < n; ++i) {
      const auto npred = static_cast<index_t>(rng.below(4));  // 0..3 predecessors
      for (index_t p = 0; p < npred; ++p) {
        const auto pred = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(i)));
        succs[static_cast<std::size_t>(pred)].push_back(i);
        deps[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  std::vector<std::vector<index_t>> succs;
  std::vector<std::atomic<int>> deps;
};

class SchedulerSweep : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(SchedulerSweep, RandomizedDagRunsEveryTaskExactlyOnce) {
  const SchedulerKind kind = GetParam();
  for (const int threads : {1, 2, 4, 8, 16}) {
    for (const std::uint64_t seed : {7ull, 1234ull, 987654321ull}) {
      const index_t n = 400;
      RandomDag dag(n, seed);
      std::vector<std::atomic<int>> runs(static_cast<std::size_t>(n));
      std::atomic<index_t> total{0};

      ThreadPool pool(threads, kind);
      ASSERT_EQ(pool.size(), threads);
      // One std::function per node, self-submitting its drained successors.
      std::function<void(index_t)> run_node = [&](index_t i) {
        runs[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
        total.fetch_add(1, std::memory_order_relaxed);
        for (const index_t s : dag.succs[static_cast<std::size_t>(i)]) {
          if (dag.deps[static_cast<std::size_t>(s)].fetch_sub(
                  1, std::memory_order_acq_rel) == 1) {
            pool.submit([&, s] { run_node(s); }, /*priority=*/s);
          }
        }
      };
      // Snapshot the initially-ready set before submitting anything: once a
      // root runs it may drain a successor to deps==0, and re-scanning live
      // counters would double-submit that node (same hazard the numeric
      // factorization guards against).
      std::vector<index_t> roots;
      for (index_t i = 0; i < n; ++i) {
        if (dag.deps[static_cast<std::size_t>(i)].load(std::memory_order_relaxed) == 0) {
          roots.push_back(i);
        }
      }
      for (const index_t i : roots) {
        pool.submit([&, i] { run_node(i); }, /*priority=*/i);
      }
      pool.wait_idle();

      // wait_idle() must not have returned before the transitive closure ran.
      EXPECT_EQ(total.load(), n) << "threads=" << threads << " seed=" << seed;
      for (index_t i = 0; i < n; ++i) {
        EXPECT_EQ(runs[static_cast<std::size_t>(i)].load(), 1)
            << "node " << i << " threads=" << threads << " seed=" << seed;
      }
      const auto stats = pool.total_stats();
      EXPECT_EQ(stats.executed, static_cast<std::uint64_t>(n));
    }
  }
}

TEST_P(SchedulerSweep, TasksSubmittedFromRunningTasksComplete) {
  const SchedulerKind kind = GetParam();
  ThreadPool pool(3, kind);
  std::atomic<int> done{0};
  constexpr int kDepth = 64;
  std::function<void(int)> chain = [&](int d) {
    done.fetch_add(1, std::memory_order_relaxed);
    if (d + 1 < kDepth) pool.submit([&, d] { chain(d + 1); });
  };
  pool.submit([&] { chain(0); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), kDepth);
}

TEST_P(SchedulerSweep, WaitIdleNeverReturnsEarly) {
  const SchedulerKind kind = GetParam();
  Prng rng(42);
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(4, kind);
    std::atomic<int> live{0};
    std::atomic<bool> observed_live_after_wait{false};
    const int ntasks = 16 + static_cast<int>(rng.below(48));
    for (int t = 0; t < ntasks; ++t) {
      pool.submit([&] {
        live.fetch_add(1, std::memory_order_acq_rel);
        // A second-generation task keeps the pool busy past the first wave.
        pool.submit([&] { live.fetch_sub(1, std::memory_order_acq_rel); });
      });
    }
    pool.wait_idle();
    if (live.load(std::memory_order_acquire) != 0) observed_live_after_wait = true;
    EXPECT_FALSE(observed_live_after_wait.load()) << "round " << round;
  }
}

TEST_P(SchedulerSweep, ParallelForCoversRange) {
  const SchedulerKind kind = GetParam();
  ThreadPool pool(4, kind);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](index_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(SchedulerSweep, NestedParallelForInsideTaskCompletes) {
  const SchedulerKind kind = GetParam();
  ThreadPool pool(2, kind);
  std::vector<std::atomic<int>> hits(256);
  std::atomic<bool> inner_done{false};
  pool.submit([&] {
    // parallel_for from inside a running task must not deadlock, even on a
    // pool whose other workers are busy or asleep.
    pool.parallel_for(256, [&](index_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    });
    inner_done.store(true, std::memory_order_release);
  });
  pool.wait_idle();
  EXPECT_TRUE(inner_done.load(std::memory_order_acquire));
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(BothKinds, SchedulerSweep, ::testing::ValuesIn(kKinds),
                         [](const auto& info) {
                           return info.param == SchedulerKind::WorkStealing
                                      ? "WorkStealing"
                                      : "SharedQueue";
                         });

// Priority semantics of the work-stealing scheduler: with a single gated
// worker, queued injected tasks must run in priority order, and a chain
// extended from inside a task (local LIFO push) must outrun equally-queued
// low-priority leaves — the chain-vs-leaves shape of the elimination tree's
// critical path.
TEST(WorkStealingPriority, ChainRunsBeforeLeavesOnSingleWorker) {
  ThreadPool pool(1, SchedulerKind::WorkStealing);

  std::mutex m;
  std::condition_variable cv;
  bool released = false;

  std::atomic<int> order{0};
  constexpr int kLeaves = 24;
  constexpr int kChain = 8;
  std::vector<int> leaf_pos(kLeaves, -1);
  std::vector<int> chain_pos(kChain, -1);

  // Gate: occupies the only worker while the queue fills.
  pool.submit(
      [&] {
        std::unique_lock lock(m);
        cv.wait(lock, [&] { return released; });
      },
      /*priority=*/1 << 20);
  for (int l = 0; l < kLeaves; ++l) {
    pool.submit([&, l] { leaf_pos[static_cast<std::size_t>(l)] = order.fetch_add(1); },
                /*priority=*/0);
  }
  std::function<void(int)> chain = [&](int d) {
    chain_pos[static_cast<std::size_t>(d)] = order.fetch_add(1);
    if (d + 1 < kChain) pool.submit([&, d] { chain(d + 1); }, /*priority=*/1000);
  };
  pool.submit([&] { chain(0); }, /*priority=*/1000);

  {
    std::lock_guard lock(m);
    released = true;
  }
  cv.notify_all();
  pool.wait_idle();

  // The whole chain (head picked by priority, links by LIFO locality) must
  // finish before any priority-0 leaf starts.
  for (const int c : chain_pos) {
    ASSERT_GE(c, 0);
    for (const int l : leaf_pos) {
      ASSERT_GE(l, 0);
      EXPECT_LT(c, l);
    }
  }
}

TEST(WorkStealingPriority, EqualPrioritiesKeepSubmissionOrder) {
  ThreadPool pool(1, SchedulerKind::WorkStealing);
  std::mutex m;
  std::condition_variable cv;
  bool released = false;
  pool.submit([&] {
    std::unique_lock lock(m);
    cv.wait(lock, [&] { return released; });
  });
  std::vector<int> sequence;
  for (int i = 0; i < 16; ++i) {
    pool.submit([&sequence, i] { sequence.push_back(i); }, /*priority=*/5);
  }
  {
    std::lock_guard lock(m);
    released = true;
  }
  cv.notify_all();
  pool.wait_idle();
  ASSERT_EQ(sequence.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(sequence[static_cast<std::size_t>(i)], i);
}

TEST(WorkStealingStats, StealsHappenAndResetWorks) {
  ThreadPool pool(4, SchedulerKind::WorkStealing);
  std::atomic<int> done{0};
  // Submit a burst from outside, then fan out from inside so local deques
  // fill and idle workers must steal.
  for (int t = 0; t < 8; ++t) {
    pool.submit([&] {
      for (int c = 0; c < 32; ++c) {
        pool.submit([&] {
          volatile double x = 1.0;
          for (int i = 0; i < 2000; ++i) x = x * 1.0000001 + 1e-9;
          (void)x;
          done.fetch_add(1, std::memory_order_relaxed);
        });
      }
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 8 * 32 + 8);
  const auto per_worker = pool.worker_stats();
  ASSERT_EQ(per_worker.size(), 4u);
  const auto total = pool.total_stats();
  EXPECT_EQ(total.executed, static_cast<std::uint64_t>(8 * 32 + 8));
  pool.reset_stats();
  EXPECT_EQ(pool.total_stats().executed, 0u);
  EXPECT_EQ(pool.total_stats().steals, 0u);
}

} // namespace
