// Robustness sweep on non-mesh matrices: random sparse symmetric-pattern
// graphs stress the ordering (irregular separators, dense-ish rows,
// disconnected pieces) and the full pipeline far from the paper's regular
// 3D grids.

#include <gtest/gtest.h>

#include "blr.hpp"

namespace {

using namespace blr;
using sparse::CscMatrix;
using sparse::Triplet;

/// Random diagonally dominant matrix on a random symmetric pattern with
/// about `avg_degree` off-diagonals per row (plus a guaranteed Hamiltonian
/// path so the graph is connected unless `disconnect`).
CscMatrix random_pattern_matrix(index_t n, index_t avg_degree, std::uint64_t seed,
                                bool connect = true) {
  Prng rng(seed);
  std::vector<Triplet> t;
  const index_t edges = n * avg_degree / 2;
  for (index_t e = 0; e < edges; ++e) {
    const auto i = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(n)));
    const auto j = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(n)));
    if (i == j) continue;
    const real_t v = rng.normal();
    t.push_back({i, j, v});
    t.push_back({j, i, v});
  }
  if (connect) {
    for (index_t i = 0; i + 1 < n; ++i) {
      t.push_back({i, i + 1, -1.0});
      t.push_back({i + 1, i, -1.0});
    }
  }
  // Strong diagonal keeps LU robust without global pivoting.
  for (index_t i = 0; i < n; ++i)
    t.push_back({i, i, static_cast<real_t>(4 * avg_degree) + 10.0});
  return CscMatrix::from_triplets(n, n, std::move(t), sparse::Symmetry::General);
}

class RandomGraphSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphSweep, FullPipelineSolves) {
  const std::uint64_t seed = GetParam();
  const CscMatrix a = random_pattern_matrix(600, 8, seed);
  ASSERT_TRUE(a.pattern_symmetric());

  for (const Strategy strat :
       {Strategy::Dense, Strategy::JustInTime, Strategy::MinimalMemory}) {
    SolverOptions opts;
    opts.strategy = strat;
    opts.tolerance = 1e-8;
    opts.compress_min_width = 16;
    opts.compress_min_height = 8;
    opts.split.split_threshold = 64;
    opts.split.split_size = 32;
    Solver solver(opts);
    solver.factorize(a);

    Prng rng(seed + 1);
    std::vector<real_t> b(static_cast<std::size_t>(a.rows()));
    for (auto& v : b) v = rng.normal();
    std::vector<real_t> x(b.size());
    solver.solve(b.data(), x.data());
    EXPECT_LT(sparse::backward_error(a, x.data(), b.data()), 1e-5)
        << "seed " << seed << " strategy " << static_cast<int>(strat);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphSweep,
                         ::testing::Values(11, 29, 47, 83, 131, 977));

TEST(RandomGraph, DisconnectedComponentsSolve) {
  // Two disconnected random blobs plus isolated vertices.
  Prng rng(3);
  std::vector<Triplet> t;
  const index_t half = 150;
  for (int blob = 0; blob < 2; ++blob) {
    const index_t base = blob * half;
    for (index_t e = 0; e < 600; ++e) {
      const auto i = base + static_cast<index_t>(rng.below(half));
      const auto j = base + static_cast<index_t>(rng.below(half));
      if (i == j) continue;
      const real_t v = rng.normal();
      t.push_back({i, j, v});
      t.push_back({j, i, v});
    }
  }
  const index_t n = 2 * half + 5;  // 5 isolated vertices
  for (index_t i = 0; i < n; ++i) t.push_back({i, i, 50.0});
  const CscMatrix a = CscMatrix::from_triplets(n, n, std::move(t));

  SolverOptions opts;
  opts.strategy = Strategy::JustInTime;
  opts.compress_min_width = 16;
  opts.compress_min_height = 8;
  Solver solver(opts);
  solver.factorize(a);
  std::vector<real_t> b(static_cast<std::size_t>(n), 1.0);
  const auto x = solver.solve(b);
  EXPECT_LT(sparse::backward_error(a, x.data(), b.data()), 1e-8);
}

TEST(RandomGraph, AsymmetricPatternRejectedUpFront) {
  const CscMatrix a =
      CscMatrix::from_triplets(4, 4, {{0, 0, 4.0}, {1, 1, 4.0}, {2, 2, 4.0},
                                      {3, 3, 4.0}, {0, 2, 1.0}});  // no (2,0)
  Solver solver{SolverOptions{}};
  EXPECT_THROW(solver.analyze(a), Error);
  // With check_pattern = false the behaviour is the caller's responsibility
  // (tiny matrices may even work when they fold into one supernode), so
  // only the guarded path is asserted.
}

TEST(RandomGraph, DenseRowHubVertex) {
  // A hub connected to everything produces one huge separator vertex.
  Prng rng(9);
  std::vector<Triplet> t;
  const index_t n = 200;
  for (index_t i = 1; i < n; ++i) {
    t.push_back({0, i, -1.0});
    t.push_back({i, 0, -1.0});
    if (i + 1 < n) {
      t.push_back({i, i + 1, -1.0});
      t.push_back({i + 1, i, -1.0});
    }
  }
  for (index_t i = 0; i < n; ++i) t.push_back({i, i, static_cast<real_t>(n)});
  const CscMatrix a = CscMatrix::from_triplets(n, n, std::move(t), sparse::Symmetry::Spd);

  Solver solver{SolverOptions{}};
  solver.factorize(a);
  std::vector<real_t> b(static_cast<std::size_t>(n), 1.0);
  const auto x = solver.solve(b);
  EXPECT_LT(sparse::backward_error(a, x.data(), b.data()), 1e-10);
}

} // namespace
