// Golden cross-strategy regression: every update policy (Minimal-Memory,
// Just-In-Time, Adaptive) crossed with both compression kernels and both
// parallel schedulers must solve the same seeded Laplacian to tolerance.
// Also pins the memory ordering the policies are designed around (MinMem <=
// Adaptive <= Dense for tracked factor bytes) and the workspace footprint of
// the Minimal-Memory scenario (contributions are tracked tiles; their
// temporary memory must stay far below the factors).

#include <gtest/gtest.h>

#include <algorithm>

#include "blr.hpp"

namespace {

using namespace blr;
using sparse::CscMatrix;

SolverOptions small_problem_options(Strategy strategy, lr::CompressionKind kind,
                                    real_t tol) {
  SolverOptions o;
  o.strategy = strategy;
  o.kind = kind;
  o.tolerance = tol;
  // Small problem: lower the compressibility thresholds so the BLR machinery
  // actually engages.
  o.compress_min_width = 16;
  o.compress_min_height = 8;
  o.split.split_threshold = 64;
  o.split.split_size = 32;
  return o;
}

std::vector<real_t> seeded_rhs(index_t n, std::uint64_t seed) {
  Prng rng(seed);
  std::vector<real_t> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.normal();
  return b;
}

struct CrossConfig {
  Strategy strategy;
  lr::CompressionKind kind;
  int threads;
  SchedulerKind scheduler;
};

class CrossStrategy : public ::testing::TestWithParam<CrossConfig> {};

TEST_P(CrossStrategy, SeededLaplacianSolvesToTolerance) {
  const CrossConfig cfg = GetParam();
  const CscMatrix a = sparse::laplacian_3d(12, 12, 12);
  const real_t tol = 1e-8;
  SolverOptions opts = small_problem_options(cfg.strategy, cfg.kind, tol);
  opts.threads = cfg.threads;
  opts.scheduler = cfg.scheduler;

  Solver solver(opts);
  solver.factorize(a);
  const auto b = seeded_rhs(a.rows(), 4321);
  std::vector<real_t> x(b.size());
  solver.solve(b.data(), x.data());
  EXPECT_LT(sparse::backward_error(a, x.data(), b.data()), tol * 500);

  // The dispatch layer counted the work: a factorization cannot happen
  // without diagonal factorizations, and every strategy here compresses.
  const auto& dispatch = solver.stats().dispatch;
  ASSERT_FALSE(dispatch.empty());
  const auto has = [&](const char* name) {
    return std::any_of(dispatch.begin(), dispatch.end(),
                       [&](const core::DispatchCount& d) {
                         return d.kernel == name && d.calls > 0;
                       });
  };
  EXPECT_TRUE(has("potrf[ge]"));
  EXPECT_TRUE(has("compress[ge]"));
}

std::string cross_name(const ::testing::TestParamInfo<CrossConfig>& info) {
  const CrossConfig& c = info.param;
  std::string s;
  switch (c.strategy) {
    case Strategy::MinimalMemory: s += "MinMem"; break;
    case Strategy::JustInTime: s += "JIT"; break;
    case Strategy::Adaptive: s += "Adaptive"; break;
    case Strategy::Dense: s += "Dense"; break;
  }
  s += c.kind == lr::CompressionKind::Svd ? "_SVD" : "_RRQR";
  if (c.threads <= 1) {
    s += "_Seq";
  } else {
    s += c.scheduler == SchedulerKind::WorkStealing ? "_WS" : "_SQ";
  }
  return s;
}

std::vector<CrossConfig> cross_matrix() {
  std::vector<CrossConfig> v;
  for (const Strategy s :
       {Strategy::MinimalMemory, Strategy::JustInTime, Strategy::Adaptive}) {
    for (const lr::CompressionKind k :
         {lr::CompressionKind::Svd, lr::CompressionKind::Rrqr}) {
      v.push_back({s, k, 1, SchedulerKind::WorkStealing});
      v.push_back({s, k, 4, SchedulerKind::SharedQueue});
      v.push_back({s, k, 4, SchedulerKind::WorkStealing});
    }
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(AllCombos, CrossStrategy,
                         ::testing::ValuesIn(cross_matrix()), cross_name);

/// Factorize sequentially and return (factors peak, workspace peak, stats).
struct MemRun {
  std::size_t factors_peak = 0;
  std::size_t workspace_peak = 0;
  std::size_t dense_entries = 0;
  double dense_fraction = 0;
};

MemRun memory_run(const CscMatrix& a, Strategy strategy) {
  SolverOptions opts =
      small_problem_options(strategy, lr::CompressionKind::Rrqr, 1e-8);
  opts.threads = 1;
  Solver s(opts);
  s.factorize(a);
  MemRun r;
  r.factors_peak = s.stats().factors_peak_bytes;
  r.workspace_peak = MemoryTracker::instance().peak(MemCategory::Workspace);
  r.dense_entries = s.stats().factor_entries_dense;
  r.dense_fraction = s.stats().dense_block_fraction;
  return r;
}

TEST(CrossStrategyMemory, AdaptiveFactorPeakBetweenMinMemAndDense) {
  const CscMatrix a = sparse::laplacian_3d(14, 14, 14);
  const MemRun minmem = memory_run(a, Strategy::MinimalMemory);
  const MemRun adaptive = memory_run(a, Strategy::Adaptive);
  const MemRun dense = memory_run(a, Strategy::Dense);

  // Minimal-Memory never holds the dense panels; Adaptive holds the marginal
  // blocks dense until elimination; Dense holds everything dense.
  EXPECT_LT(minmem.factors_peak, dense.factors_peak);
  EXPECT_LE(minmem.factors_peak, adaptive.factors_peak);
  EXPECT_LE(adaptive.factors_peak, dense.factors_peak);

  // Dense never compresses: every compressible block ends dense.
  EXPECT_EQ(dense.dense_fraction, 1.0);
  // BLR strategies must have compressed something on this problem.
  EXPECT_LT(minmem.dense_fraction, 1.0);
  EXPECT_LT(adaptive.dense_fraction, 1.0);
}

TEST(CrossStrategyMemory, MinMemWorkspaceStaysSmall) {
  // Contributions are Workspace-tracked tiles: a low-rank product allocates
  // only its U/V factors (no dead dense half), so the temporary memory of
  // the Minimal-Memory scenario on a 3D Laplacian must stay far below both
  // the factor peak and the dense factor size.
  const CscMatrix a = sparse::laplacian_3d(14, 14, 14);
  const MemRun r = memory_run(a, Strategy::MinimalMemory);
  ASSERT_GT(r.workspace_peak, 0u);  // contributions are actually tracked
  EXPECT_LT(r.workspace_peak, r.factors_peak);
  EXPECT_LT(r.workspace_peak, r.dense_entries * sizeof(real_t) / 4);
}

} // namespace
