// Tests of the Householder QR stack, in particular the truncated pivoted QR
// (geqp3_trunc) that implements the paper's RRQR compression kernel.

#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "linalg/random.hpp"

namespace {

using namespace blr;
using namespace blr::la;

/// ‖Qᵗ·Q − I‖_F for a matrix with (supposedly) orthonormal columns.
real_t orthogonality_defect(DConstView q) {
  DMatrix g(q.cols, q.cols);
  gemm(Trans::Yes, Trans::No, real_t(1), q, q, real_t(0), g.view());
  for (index_t i = 0; i < q.cols; ++i) g(i, i) -= 1;
  return norm_fro(g.cview());
}

struct QrShape {
  index_t m, n;
};

class GeqrfShapes : public ::testing::TestWithParam<QrShape> {};

TEST_P(GeqrfShapes, ReconstructsAndQIsOrthonormal) {
  const auto [m, n] = GetParam();
  Prng rng(static_cast<std::uint64_t>(m * 100 + n));
  DMatrix a(m, n);
  random_normal(a.view(), rng);
  const DMatrix a0 = a;

  std::vector<real_t> tau;
  geqrf(a.view(), tau);
  const index_t k = std::min(m, n);

  // Extract R (k x n), rebuild Q (m x k) and check A = Q·R.
  DMatrix r(k, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < std::min(j + 1, k); ++i) r(i, j) = a(i, j);
  DMatrix q(a.cview().sub(0, 0, m, k));
  std::vector<real_t> tau_k(tau.begin(), tau.begin() + k);
  orgqr(q.view(), tau_k);

  EXPECT_LT(orthogonality_defect(q.cview()), 1e-12 * static_cast<real_t>(k));
  DMatrix qr(m, n);
  gemm(Trans::No, Trans::No, real_t(1), q.cview(), r.cview(), real_t(0), qr.view());
  EXPECT_LT(diff_fro(qr.cview(), a0.cview()), 1e-11 * norm_fro(a0.cview()));
}

INSTANTIATE_TEST_SUITE_P(Shapes, GeqrfShapes,
                         ::testing::Values(QrShape{1, 1}, QrShape{5, 5},
                                           QrShape{20, 7}, QrShape{7, 20},
                                           QrShape{64, 64}, QrShape{100, 30},
                                           QrShape{2, 40}));

TEST(Ormqr, AppliesQAndQt) {
  Prng rng(8);
  const index_t m = 15, k = 6;
  DMatrix a(m, k);
  random_normal(a.view(), rng);
  std::vector<real_t> tau;
  DMatrix fact = a;
  geqrf(fact.view(), tau);
  DMatrix q(fact.cview());
  orgqr(q.view(), tau);

  // Qᵗ·(Q·C) == C for any C.
  DMatrix c(m, 4);
  random_normal(c.view(), rng);
  DMatrix w = c;
  ormqr_left<real_t>(Trans::No, fact.cview(), tau, w.view());
  // Compare against explicit Q product restricted to full-size Q: build via
  // applying to identity is already orgqr; here check round trip instead.
  ormqr_left<real_t>(Trans::Yes, fact.cview(), tau, w.view());
  EXPECT_LT(diff_fro(w.cview(), c.cview()), 1e-12 * (1 + norm_fro(c.cview())));
}

TEST(Larfg, AnnihilatesTail) {
  std::vector<real_t> x{3, 4};  // (alpha=3, tail={4})
  real_t tau = 0;
  const real_t beta = larfg(real_t(3), 1, x.data() + 1, tau);
  EXPECT_NEAR(std::abs(beta), 5.0, 1e-14);  // preserves the 2-norm
  EXPECT_GT(tau, 0.0);
}

TEST(Larfg, ZeroTailGivesZeroTau) {
  std::vector<real_t> x{2, 0, 0};
  real_t tau = 1;
  const real_t beta = larfg(real_t(2), 2, x.data() + 1, tau);
  EXPECT_EQ(tau, 0.0);
  EXPECT_EQ(beta, 2.0);
}

struct RrqrCase {
  index_t m, n, rank;
};

class RrqrRankRecovery : public ::testing::TestWithParam<RrqrCase> {};

TEST_P(RrqrRankRecovery, FindsExactRank) {
  const auto [m, n, rank] = GetParam();
  Prng rng(static_cast<std::uint64_t>(m + 31 * n + 1001 * rank));
  DMatrix a = random_rank_k<real_t>(m, n, rank, rng);
  const real_t tol = 1e-10 * norm_fro(a.cview());

  std::vector<index_t> jpvt;
  std::vector<real_t> tau;
  DMatrix w = a;
  const index_t r = geqp3_trunc(w.view(), jpvt, tau, tol, std::min(m, n));
  EXPECT_EQ(r, std::min({m, n, rank}));
}

INSTANTIATE_TEST_SUITE_P(Cases, RrqrRankRecovery,
                         ::testing::Values(RrqrCase{30, 30, 5}, RrqrCase{50, 20, 3},
                                           RrqrCase{20, 50, 7}, RrqrCase{64, 64, 1},
                                           RrqrCase{40, 40, 40}, RrqrCase{33, 17, 17}));

TEST(Rrqr, EarlyExitOnZeroMatrix) {
  DMatrix a(10, 10);
  std::vector<index_t> jpvt;
  std::vector<real_t> tau;
  EXPECT_EQ(geqp3_trunc(a.view(), jpvt, tau, real_t(0), index_t(10)), 0);
}

TEST(Rrqr, RespectsMaxRankCap) {
  Prng rng(6);
  DMatrix a(30, 30);
  random_normal(a.view(), rng);  // full rank
  std::vector<index_t> jpvt;
  std::vector<real_t> tau;
  EXPECT_EQ(geqp3_trunc(a.view(), jpvt, tau, real_t(1e-14), index_t(7)), 7);
}

TEST(Rrqr, PivotVectorIsPermutation) {
  Prng rng(14);
  DMatrix a = random_rank_k<real_t>(25, 18, 6, rng);
  std::vector<index_t> jpvt;
  std::vector<real_t> tau;
  geqp3_trunc(a.view(), jpvt, tau, real_t(1e-9), index_t(18));
  std::vector<char> seen(18, 0);
  for (const index_t p : jpvt) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 18);
    EXPECT_FALSE(seen[static_cast<std::size_t>(p)]);
    seen[static_cast<std::size_t>(p)] = 1;
  }
}

TEST(Rrqr, TruncationErrorBelowTolerance) {
  // Property: stopping at tol guarantees ‖A·P − Q_r·R_r‖_F <= tol.
  Prng rng(99);
  for (const real_t decay : {0.9, 0.5, 0.2}) {
    DMatrix a = random_decaying<real_t>(40, 32, decay, rng);
    const real_t anorm = norm_fro(a.cview());
    const real_t tol = 1e-6 * anorm;
    DMatrix w = a;
    std::vector<index_t> jpvt;
    std::vector<real_t> tau;
    const index_t r = geqp3_trunc(w.view(), jpvt, tau, tol, index_t(32));

    // Rebuild the truncated factorization and measure the error against A·P.
    DMatrix q(w.cview().sub(0, 0, 40, r));
    std::vector<real_t> tau_r(tau.begin(), tau.begin() + r);
    orgqr(q.view(), tau_r);
    DMatrix rmat(r, 32);
    for (index_t j = 0; j < 32; ++j)
      for (index_t i = 0; i < std::min(j + 1, r); ++i) rmat(i, j) = w(i, j);
    DMatrix ap(40, 32);
    for (index_t j = 0; j < 32; ++j)
      for (index_t i = 0; i < 40; ++i) ap(i, j) = a(i, jpvt[static_cast<std::size_t>(j)]);
    DMatrix qr(40, 32);
    gemm(Trans::No, Trans::No, real_t(1), q.cview(), rmat.cview(), real_t(0), qr.view());
    EXPECT_LT(diff_fro(qr.cview(), ap.cview()), 1.5 * tol) << "decay=" << decay;
  }
}

} // namespace
