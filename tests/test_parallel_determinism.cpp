// Parallel-vs-sequential agreement: for every strategy × factorization kind
// on generator matrices, the parallel factorization (both scheduler kinds,
// several thread counts, panel splitting forced on) must reproduce the
// sequential run's residual and storage within floating-point tolerance.

#include <gtest/gtest.h>

#include <cmath>

#include "blr.hpp"

namespace {

using namespace blr;
using sparse::CscMatrix;

struct Case {
  Strategy strategy;
  Factorization facto;
};

SolverOptions base_opts(const Case& c, int threads, SchedulerKind kind,
                        core::Dataflow dataflow = core::Dataflow::Barrier) {
  SolverOptions o;
  o.strategy = c.strategy;
  o.factorization = c.facto;
  o.threads = threads;
  o.scheduler = kind;
  o.dataflow = dataflow;
  // Small thresholds so the tiny test grids still produce low-rank blocks
  // and multi-blok panels; tiny split threshold so the panel-split subtask
  // path is exercised even at this scale.
  o.compress_min_width = 16;
  o.compress_min_height = 8;
  o.split.split_threshold = 64;
  o.split.split_size = 32;
  o.panel_split_rows = 48;
  return o;
}

CscMatrix matrix_for(Factorization f) {
  // LU: nonsymmetric convection-diffusion; LLt: SPD vector elasticity.
  return f == Factorization::Lu
             ? sparse::convection_diffusion_3d(7, 7, 7, 0.5)
             : sparse::elasticity_3d(4, 4, 4, 2.0, 1.0);
}

real_t run_once(const CscMatrix& a, const SolverOptions& o,
                std::size_t* entries) {
  Solver solver(o);
  solver.factorize(a);
  std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
  const auto x = solver.solve(b);
  *entries = solver.stats().factor_entries_final;
  return sparse::backward_error(a, x.data(), b.data());
}

class ParallelDeterminism : public ::testing::TestWithParam<Case> {};

TEST_P(ParallelDeterminism, MatchesSequentialRun) {
  const Case c = GetParam();
  const CscMatrix a = matrix_for(c.facto);

  std::size_t entries_seq = 0;
  const real_t res_seq =
      run_once(a, base_opts(c, 1, SchedulerKind::WorkStealing), &entries_seq);
  ASSERT_LT(res_seq, 1e-6);
  ASSERT_GT(entries_seq, 0u);

  for (const SchedulerKind kind :
       {SchedulerKind::WorkStealing, SchedulerKind::SharedQueue}) {
    for (const int threads : {1, 2, 8}) {
      std::size_t entries_par = 0;
      const real_t res_par =
          run_once(a, base_opts(c, threads, kind), &entries_par);

      // The update order changes under concurrency, so results agree to
      // rounding (and, for compressed strategies, to the rank decisions
      // rounding can flip), not bit-for-bit.
      EXPECT_LT(res_par, std::max<real_t>(1e-10, 50 * res_seq))
          << scheduler_name(kind) << " threads=" << threads;
      if (c.strategy == Strategy::Dense) {
        EXPECT_EQ(entries_par, entries_seq)
            << scheduler_name(kind) << " threads=" << threads;
      } else {
        const double rel =
            std::abs(static_cast<double>(entries_par) -
                     static_cast<double>(entries_seq)) /
            static_cast<double>(entries_seq);
        EXPECT_LT(rel, 0.02) << scheduler_name(kind) << " threads=" << threads
                             << " entries " << entries_par << " vs "
                             << entries_seq;
      }
    }
  }
}

// Dataflow runs are pinned harder than barrier runs: the per-tile write
// chains make any Dag execution — both scheduler kinds, any thread count —
// reproduce the sequential barrier result exactly, so the entry counts must
// be EQUAL for every strategy (not within tolerance) and the residual must
// match the sequential one to refinement accuracy.
TEST_P(ParallelDeterminism, DagMatchesBarrierAcrossSchedulers) {
  const Case c = GetParam();
  const CscMatrix a = matrix_for(c.facto);

  std::size_t entries_seq = 0;
  const real_t res_seq =
      run_once(a, base_opts(c, 1, SchedulerKind::WorkStealing), &entries_seq);
  ASSERT_LT(res_seq, 1e-6);
  ASSERT_GT(entries_seq, 0u);

  for (const SchedulerKind kind :
       {SchedulerKind::WorkStealing, SchedulerKind::SharedQueue}) {
    for (const int threads : {1, 2, 8}) {
      std::size_t entries_dag = 0;
      const real_t res_dag =
          run_once(a, base_opts(c, threads, kind, core::Dataflow::Dag),
                   &entries_dag);
      // Identical factors ⇒ identical rank decisions ⇒ identical storage,
      // for compressed strategies too.
      EXPECT_EQ(entries_dag, entries_seq)
          << scheduler_name(kind) << " threads=" << threads;
      EXPECT_LT(res_dag, std::max<real_t>(1e-10, 50 * res_seq))
          << scheduler_name(kind) << " threads=" << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategyFactoGrid, ParallelDeterminism,
    ::testing::Values(Case{Strategy::Dense, Factorization::Lu},
                      Case{Strategy::Dense, Factorization::Llt},
                      Case{Strategy::JustInTime, Factorization::Lu},
                      Case{Strategy::JustInTime, Factorization::Llt},
                      Case{Strategy::MinimalMemory, Factorization::Lu},
                      Case{Strategy::MinimalMemory, Factorization::Llt}),
    [](const auto& info) {
      std::string s = info.param.strategy == Strategy::Dense ? "Dense"
                      : info.param.strategy == Strategy::JustInTime
                          ? "JIT"
                          : "MinMem";
      s += info.param.facto == Factorization::Lu ? "Lu" : "Llt";
      return s;
    });

} // namespace
