#!/usr/bin/env python3
"""Append one perfsmoke run to the tracked BENCH_trajectory.json.

The perfsmoke CI stage overwrites BENCH_kernels.json with the latest numbers,
which loses history. This script folds each green run into a rolling
trajectory file — one summarized entry per run, newest last — so performance
drift across commits is visible from the tree itself.

Usage: scripts/bench_trajectory.py <report.json> [<report2.json> ...]
           [-o <trajectory.json>]

Each report is identified by its keys — bench_kernels.json carries
`packed_gemm`/`backends`/`batched_dispatch`, bench_refactorize.json carries
`refactorize`/`solve_throughput` — and all reports given on one invocation
fold into a single trajectory entry.

The trajectory entry keeps only the headline numbers (packed-gemm speedups
per size, batched-dispatch mean speedup, steady-state refactorize speedup
per strategy, blocked-solve throughput per width) plus the commit and
timestamp, so the file stays small no matter how many runs accumulate. The
newest `MAX_RUNS` entries are retained.
"""

import json
import subprocess
import sys
import time
from pathlib import Path

MAX_RUNS = 200


def git_head(repo: Path) -> str:
    try:
        out = subprocess.run(
            ["git", "-C", str(repo), "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        )
        return out.stdout.strip()
    except (subprocess.CalledProcessError, OSError):
        return "unknown"


def summarize(report: dict) -> dict:
    entry = {}
    packed = report.get("packed_gemm", [])
    if packed:
        entry["packed_gemm_speedup"] = {
            str(row["n"]): row["speedup"] for row in packed if "n" in row
        }
    backends = report.get("backends", [])
    if backends:
        # Headline per-backend GF/s at the largest measured size, plus the
        # Native ISA tier the run dispatched to.
        biggest = max(row["n"] for row in backends if "n" in row)
        entry["backend_gflops"] = {
            row["backend"]: row["gflops"]
            for row in backends if row.get("n") == biggest
        }
        isas = {row["isa"] for row in backends if row.get("isa")}
        if isas:
            entry["backend_isa"] = sorted(isas)[0]
    batched = report.get("batched_dispatch", [])
    speedups = [row["speedup"] for row in batched if "speedup" in row]
    if speedups:
        entry["batched_mean_speedup"] = round(
            sum(speedups) / len(speedups), 4
        )
        entry["batched_min_speedup"] = round(min(speedups), 4)
    refac = report.get("refactorize", [])
    if refac:
        # bench_refactorize.json: first-step vs steady-state cost per
        # strategy, plus how much of the steady pass ran off warm hints.
        entry["refactorize_speedup"] = {
            row["strategy"]: row["speedup"]
            for row in refac if "strategy" in row
        }
        entry["refactorize_warm_hits"] = {
            row["strategy"]: row.get("warm_hits", 0) + row.get("dense_skips", 0)
            for row in refac if "strategy" in row
        }
    solves = report.get("solve_throughput", [])
    if solves:
        # Keyed "<nrhs>@<threads>t" so the 1-thread sweep and the parallel
        # solve-pool sweep track as separate series (rows from reports
        # predating the threads axis fold in as 1-thread).
        entry["solve_rhs_per_s"] = {
            f"{row['nrhs']}@{row.get('threads', 1)}t": row["rhs_per_s"]
            for row in solves if "nrhs" in row
        }
    return entry


def main(argv: list) -> int:
    args = argv[1:]
    if not args or args[0] in ("-h", "--help"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    repo = Path(__file__).resolve().parent.parent
    traj_path = repo / "BENCH_trajectory.json"
    report_paths = []
    i = 0
    while i < len(args):
        if args[i] == "-o":
            if i + 1 >= len(args):
                print("bench_trajectory: -o needs a path", file=sys.stderr)
                return 2
            traj_path = Path(args[i + 1])
            i += 2
        else:
            report_paths.append(Path(args[i]))
            i += 1

    runs = []
    if traj_path.exists():
        try:
            runs = json.loads(traj_path.read_text()).get("runs", [])
        except (json.JSONDecodeError, AttributeError):
            print(f"bench_trajectory: {traj_path} unreadable, restarting",
                  file=sys.stderr)
            runs = []

    entry = {}
    for report_path in report_paths:
        entry.update(summarize(json.loads(report_path.read_text())))
    entry["commit"] = git_head(repo)
    entry["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    runs.append(entry)
    runs = runs[-MAX_RUNS:]

    traj_path.write_text(
        json.dumps({"runs": runs}, indent=2, sort_keys=True) + "\n"
    )
    print(f"bench_trajectory: appended run {len(runs)} -> {traj_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
