#!/usr/bin/env python3
"""Append one perfsmoke run to the tracked BENCH_trajectory.json.

The perfsmoke CI stage overwrites BENCH_kernels.json with the latest numbers,
which loses history. This script folds each green run into a rolling
trajectory file — one summarized entry per run, newest last — so performance
drift across commits is visible from the tree itself.

Usage: scripts/bench_trajectory.py <bench_kernels.json> [<trajectory.json>]

The trajectory entry keeps only the headline numbers (packed-gemm speedups
per size, batched-dispatch mean speedup) plus the commit and timestamp, so
the file stays small no matter how many runs accumulate. The newest
`MAX_RUNS` entries are retained.
"""

import json
import subprocess
import sys
import time
from pathlib import Path

MAX_RUNS = 200


def git_head(repo: Path) -> str:
    try:
        out = subprocess.run(
            ["git", "-C", str(repo), "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        )
        return out.stdout.strip()
    except (subprocess.CalledProcessError, OSError):
        return "unknown"


def summarize(report: dict) -> dict:
    entry = {}
    packed = report.get("packed_gemm", [])
    if packed:
        entry["packed_gemm_speedup"] = {
            str(row["n"]): row["speedup"] for row in packed if "n" in row
        }
    backends = report.get("backends", [])
    if backends:
        # Headline per-backend GF/s at the largest measured size, plus the
        # Native ISA tier the run dispatched to.
        biggest = max(row["n"] for row in backends if "n" in row)
        entry["backend_gflops"] = {
            row["backend"]: row["gflops"]
            for row in backends if row.get("n") == biggest
        }
        isas = {row["isa"] for row in backends if row.get("isa")}
        if isas:
            entry["backend_isa"] = sorted(isas)[0]
    batched = report.get("batched_dispatch", [])
    speedups = [row["speedup"] for row in batched if "speedup" in row]
    if speedups:
        entry["batched_mean_speedup"] = round(
            sum(speedups) / len(speedups), 4
        )
        entry["batched_min_speedup"] = round(min(speedups), 4)
    return entry


def main(argv: list) -> int:
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    report_path = Path(argv[1])
    repo = Path(__file__).resolve().parent.parent
    traj_path = Path(argv[2]) if len(argv) > 2 else repo / "BENCH_trajectory.json"

    report = json.loads(report_path.read_text())
    runs = []
    if traj_path.exists():
        try:
            runs = json.loads(traj_path.read_text()).get("runs", [])
        except (json.JSONDecodeError, AttributeError):
            print(f"bench_trajectory: {traj_path} unreadable, restarting",
                  file=sys.stderr)
            runs = []

    entry = summarize(report)
    entry["commit"] = git_head(repo)
    entry["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    runs.append(entry)
    runs = runs[-MAX_RUNS:]

    traj_path.write_text(
        json.dumps({"runs": runs}, indent=2, sort_keys=True) + "\n"
    )
    print(f"bench_trajectory: appended run {len(runs)} -> {traj_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
