#!/usr/bin/env bash
# CI matrix: a Debug build plus one build per sanitizer (reusing the
# BLR_SANITIZE cache option), each with its own ctest selection, plus
# clang-tidy on the numeric-engine headers.
#
#   scripts/ci.sh              # run every stage
#   scripts/ci.sh debug        # one stage: docs | debug | asan | ubsan | tsan |
#                              #   perfsmoke | backends | tidy
#
# Build trees go to build-ci-<stage>. The Debug stage exports
# compile_commands.json and links it at the repo root for tooling.
set -euo pipefail
cd "$(dirname "$0")/.."

GENERATOR=()
command -v ninja >/dev/null 2>&1 && GENERATOR=(-G Ninja)
JOBS="$(nproc)"

# stage name -> BLR_SANITIZE value and ctest selection. Sanitized builds run
# label subsets: ASan/UBSan take the whole suite (including the `resource`
# label, whose soft-failure paths are exactly where leaks would hide); TSan
# (the slowest) takes the concurrency-sensitive suites — the engine + fault +
# dag + resource + session + solve labels (sessions coalesce solves across
# threads and race refactorize against them; the solve label drains the
# parallel solve DAG and races direct solves on the engine lock) and the
# scheduler/determinism tests written for it.
configure_and_build() { # <dir> <sanitize> [extra cmake args...]
  local dir="$1" sanitize="$2"
  shift 2
  cmake -B "$dir" -S . "${GENERATOR[@]}" -DCMAKE_BUILD_TYPE=Debug \
        -DBLR_SANITIZE="$sanitize" "$@"
  cmake --build "$dir" -j "$JOBS"
}

run_debug() {
  configure_and_build build-ci-debug "" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  ln -sf build-ci-debug/compile_commands.json compile_commands.json
  ctest --test-dir build-ci-debug --output-on-failure -j "$JOBS"
}

run_asan() {
  configure_and_build build-ci-asan address
  ctest --test-dir build-ci-asan --output-on-failure -j "$JOBS"
  # Focused re-run of the solve label: the widen cache and the permutation
  # scratch pool are exactly the lazily-built, cross-solve-reused allocations
  # where leaks and use-after-invalidation would hide.
  ctest --test-dir build-ci-asan --output-on-failure -j "$JOBS" -L solve
}

run_ubsan() {
  configure_and_build build-ci-ubsan undefined
  ctest --test-dir build-ci-ubsan --output-on-failure -j "$JOBS"
}

run_tsan() {
  configure_and_build build-ci-tsan thread
  ctest --test-dir build-ci-tsan --output-on-failure -j "$JOBS" \
        -L 'engine|fault|dag|resource|session|solve'
  ctest --test-dir build-ci-tsan --output-on-failure -j "$JOBS" \
        -R 'thread_pool|ParallelDeterminism|Trace'
}

# Documentation lint: every SolverOptions field must carry a doc comment —
# either a /// block on the preceding line(s) or a trailing ///< — so the
# README options table cannot silently drift from the header. Fails listing
# the undocumented fields.
run_docs() {
  awk '
    /^struct SolverOptions/ { in_struct = 1; next }
    !in_struct              { next }
    /^};/                   { exit bad }
    {
      line = $0
      sub(/^[ \t]+/, "", line)
    }
    line ~ /^\/\/\// { prev_doc = 1; next }   # /// doc line: blesses the next field
    line ~ /^\/\//   { prev_doc = 0; next }   # plain // comment does not
    line == ""       { next }
    line ~ /;[ \t]*(\/\/.*)?$/ {              # a member declaration
      if (line ~ /\/\/\/</ || prev_doc) { prev_doc = 0; next }
      printf "ci[docs]: undocumented SolverOptions field: %s\n", line
      bad = 1
      next
    }
    { prev_doc = 0 }
    END { exit bad }
  ' src/core/options.hpp
  echo "ci[docs]: every SolverOptions field is documented"
}

# Performance smoke: Release builds of bench_kernels and bench_refactorize
# run in --quick mode. Each bench enforces its own floor — packed gemm must
# not be >10% slower than the old loop nests at n=k=256, the
# Batching::PerSupernode end-to-end run must actually form batches, and the
# re-factorization trajectory must actually reuse the plan/buffers/rank
# hints — and exits nonzero otherwise. The JSON reports are copied over the
# committed BENCH_*.json so the last green perfsmoke numbers travel with the
# tree, and both are summarized into one entry of the rolling
# BENCH_trajectory.json so drift across commits stays visible.
run_perfsmoke() {
  cmake -B build-ci-perfsmoke -S . "${GENERATOR[@]}" \
        -DCMAKE_BUILD_TYPE=Release
  cmake --build build-ci-perfsmoke -j "$JOBS" \
        --target bench_kernels --target bench_refactorize
  (cd build-ci-perfsmoke && ./bench/bench_kernels --quick)
  (cd build-ci-perfsmoke && ./bench/bench_refactorize --quick)
  cp build-ci-perfsmoke/bench_kernels.json BENCH_kernels.json
  cp build-ci-perfsmoke/bench_refactorize.json BENCH_refactorize.json
  python3 scripts/bench_trajectory.py BENCH_kernels.json BENCH_refactorize.json
  echo "ci[perfsmoke]: packed gemm, batching and refactorize reuse within bounds"
}

# Backend A/B: the full tier-1 suite twice against ONE Debug build — once
# forced onto the Reference loop nests, once onto the Native packed engine —
# via the BLR_BACKEND environment override, proving the runtime-dispatch
# contract (same binary, no recompilation; DESIGN.md §14). Reuses the debug
# build tree when it exists. On non-x86 hosts Native still runs (the
# portable packed tier is always compiled in), so no skip is needed; the
# SIMD tiers just aren't built there.
run_backends() {
  configure_and_build build-ci-debug ""
  BLR_BACKEND=reference ctest --test-dir build-ci-debug \
        --output-on-failure -j "$JOBS"
  BLR_BACKEND=native ctest --test-dir build-ci-debug \
        --output-on-failure -j "$JOBS"
  echo "ci[backends]: full suite green under BLR_BACKEND=reference and =native"
}

# clang-tidy over the headers introduced by the tile-centric engine. Fails
# on any warning; skipped (not failed) when clang-tidy is not installed.
run_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "ci: clang-tidy not found, skipping the tidy stage"
    return 0
  fi
  clang-tidy --warnings-as-errors='*' \
      src/lowrank/tile.hpp src/core/kernels_dispatch.hpp \
      src/core/update_policy.hpp \
      -- -std=c++20 -x c++ -Isrc
}

STAGES=(docs debug asan ubsan tsan perfsmoke backends tidy)
if [[ $# -gt 0 ]]; then STAGES=("$@"); fi
for stage in "${STAGES[@]}"; do
  echo "==== ci stage: $stage ===="
  "run_$stage"
done
echo "==== ci: all stages passed ===="
